/**
 * @file
 * bclint: the repository's custom static-analysis pass.
 *
 * A standalone token/line-level linter (no libclang) enforcing project
 * rules that generic tools cannot know about — determinism of the
 * simulation, Event ownership, Border Control address hygiene, and the
 * repo's header conventions. Run as a ctest ("ctest -R bclint", label
 * "lint"); it scans src/, tests/, bench/, tools/, and examples/ and
 * exits nonzero on any finding.
 *
 * Rules (see --list-rules):
 *   nondeterminism      no rand()/random_device/wall-clock in sim code
 *   ptr-keyed-container no unordered_{map,set} keyed by pointers
 *   raw-event-new       no `new FooEvent` outside the EventQueue
 *   missing-override    virtual overrides in derived classes spell
 *                       `override`
 *   catch-all           no `catch (...)` swallowing
 *   include-guard       headers carry the canonical BCTRL_..._HH guard
 *   namespace-bctrl     src/ code lives in namespace bctrl
 *   addr-arith          no raw page/block shift-mask arithmetic outside
 *                       the mem/addr.hh helpers
 *   raw-packet-alloc    no direct Packet minting outside the pool
 *                       factory; go through allocPacket()
 *   raw-console-io      no printf/std::cout/std::cerr in src/; route
 *                       through sim/logging.hh (or take an ostream)
 *   cross-domain-direct-call
 *                       no scheduling through another component's
 *                       eventQueue() accessor; same-domain reaches
 *                       carry an explicit allow (the inventory the
 *                       parallel-loop overlap work tracks)
 *   suppression-budget  budgeted rules carry a pinned tree-wide
 *                       bclint:allow count (kAllowBudgets); growing
 *                       or shrinking the inventory without re-pinning
 *                       the budget is a finding
 *
 * Suppression: `// bclint:allow(rule-id[, rule-id...])` on the finding
 * line or the line above it; `// bclint:allow-file(rule-id)` anywhere
 * in a file suppresses the rule for the whole file.
 *
 * Self-test: `bclint --self-test DIR` scans fixture files named
 * `<rule-id>__fires.*` (must produce >= 1 finding of exactly that rule
 * and nothing else) and `<rule-id>__suppressed.*` (must produce no
 * findings at all), proving both that each rule fires and that its
 * suppressions work.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Diagnostic {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

struct SourceFile {
    std::string displayPath; ///< path printed in diagnostics
    std::string relPath;     ///< '/'-separated path used for rule scoping
    bool selfTest = false;   ///< fixture mode: apply every rule
    std::vector<std::string> raw;     ///< raw lines (1-based via index+1)
    std::vector<std::string> code;    ///< comment/literal-blanked lines
    std::vector<std::string> comment; ///< comment text per line
    std::set<std::string> fileAllows;
    std::map<int, std::set<std::string>> lineAllows;
};

struct RuleInfo {
    const char *id;
    const char *summary;
};

const RuleInfo kRules[] = {
    {"nondeterminism",
     "no rand()/std::random_device/wall-clock time in simulation code; "
     "use bctrl::Random and the event queue's curTick()"},
    {"ptr-keyed-container",
     "no std::unordered_map/unordered_set keyed by pointers: iteration "
     "order would depend on allocation addresses"},
    {"raw-event-new",
     "no raw new/delete of Event subclasses outside the EventQueue; "
     "use scheduleLambda() or own the event by value"},
    {"missing-override",
     "virtual member functions of derived classes must be spelled "
     "`override` (new pure-virtual interface points are exempt)"},
    {"catch-all", "no `catch (...)`: it swallows the panic paths"},
    {"include-guard",
     "headers open with the canonical #ifndef/#define BCTRL_<PATH>_HH "
     "guard pair"},
    {"namespace-bctrl", "src/ code must live in namespace bctrl"},
    {"addr-arith",
     "no raw page/block shift or mask arithmetic; use the addr.hh "
     "helpers (pageNumber, pageBase, blockAlign, ...)"},
    {"mutable-global-state",
     "no mutable namespace-scope variables in src/: concurrent "
     "Systems share one process; keep state per-System, const, or "
     "std::atomic"},
    {"raw-packet-alloc",
     "no make_shared<Packet>/new Packet/Packet::make outside the "
     "packet pool factory; mint through allocPacket() so steady-state "
     "traffic reuses pooled packets"},
    {"raw-console-io",
     "no printf-family or std::cout/cerr/clog in src/: the library "
     "runs under parallel sweeps and tests; use sim/logging.hh or "
     "write to a caller-supplied std::ostream"},
    {"unseeded-random",
     "no std::<random> engines (mt19937, minstd_rand, ...) in src/: "
     "all randomness flows through the explicitly seeded "
     "bctrl::Random so chaos and sweep runs replay exactly"},
    {"cross-domain-direct-call",
     "no schedule/scheduleLambda/reschedule through another "
     "component's eventQueue() accessor: in the domain-sharded loop "
     "a synchronous cross-domain schedule has zero lookahead and "
     "pins the shards serial; schedule on your own queue (push() "
     "mailbox-routes) and annotate genuine same-domain reaches"},
    {"suppression-budget",
     "rules listed in kAllowBudgets carry a pinned tree-wide "
     "bclint:allow count; a new annotation (or a removal without "
     "re-pinning) fails the lint run"},
};

/**
 * Pinned tree-wide bclint:allow inventories. The count is exact, not
 * a ceiling: removing an annotation without lowering the budget fails
 * too, so the inventory can only ratchet down deliberately.
 */
struct AllowBudget {
    const char *rule;
    std::size_t allowed;
};

const AllowBudget kAllowBudgets[] = {
    // The audited same-domain reaches that survived the async-border
    // refactor: gpu/wavefront.cc x3 (wavefront -> its own CU's queue)
    // and bc/attack.cc x1 (attack timer on the device's own queue).
    // A new cross-domain schedule must go through the caller's queue,
    // which mailbox-routes it with lookahead.
    {"cross-domain-direct-call", 4},
};

bool
knownRule(const std::string &id)
{
    for (const RuleInfo &r : kRules)
        if (id == r.id)
            return true;
    return false;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/**
 * Split a file into blanked-code and comment-text views.
 *
 * String and character literals are replaced by spaces in the code view
 * so rule patterns never match inside them; comments are moved to the
 * comment view (where the suppression syntax is parsed). Line structure
 * is preserved exactly. Escape sequences are honoured; raw string
 * literals without embedded quotes are handled by the same state
 * machine.
 */
void
splitViews(SourceFile &sf)
{
    enum class State { code, lineComment, blockComment, str, chr };
    State st = State::code;

    sf.code.reserve(sf.raw.size());
    sf.comment.reserve(sf.raw.size());
    for (const std::string &line : sf.raw) {
        std::string code(line.size(), ' ');
        std::string comment(line.size(), ' ');
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char n = i + 1 < line.size() ? line[i + 1] : '\0';
            switch (st) {
              case State::code:
                if (c == '/' && n == '/') {
                    st = State::lineComment;
                    ++i;
                } else if (c == '/' && n == '*') {
                    st = State::blockComment;
                    ++i;
                } else if (c == '"') {
                    st = State::str;
                } else if (c == '\'') {
                    st = State::chr;
                } else {
                    code[i] = c;
                }
                break;
              case State::lineComment:
                comment[i] = c;
                break;
              case State::blockComment:
                if (c == '*' && n == '/') {
                    st = State::code;
                    ++i;
                } else {
                    comment[i] = c;
                }
                break;
              case State::str:
                if (c == '\\') {
                    ++i;
                } else if (c == '"') {
                    st = State::code;
                }
                break;
              case State::chr:
                if (c == '\\') {
                    ++i;
                } else if (c == '\'') {
                    st = State::code;
                }
                break;
            }
        }
        if (st == State::lineComment)
            st = State::code; // line comments end at the newline
        if (st == State::str || st == State::chr)
            st = State::code; // unterminated literal: resynchronize
        sf.code.push_back(std::move(code));
        sf.comment.push_back(std::move(comment));
    }
}

void
parseSuppressions(SourceFile &sf)
{
    static const std::regex allowRe(
        R"(bclint:allow(-file)?\(([A-Za-z0-9_, -]+)\))");
    for (std::size_t i = 0; i < sf.comment.size(); ++i) {
        std::smatch m;
        std::string text = sf.comment[i];
        while (std::regex_search(text, m, allowRe)) {
            const bool wholeFile = m[1].matched;
            std::stringstream rules(m[2].str());
            std::string rule;
            while (std::getline(rules, rule, ',')) {
                rule.erase(0, rule.find_first_not_of(" \t"));
                rule.erase(rule.find_last_not_of(" \t") + 1);
                if (rule.empty())
                    continue;
                if (wholeFile)
                    sf.fileAllows.insert(rule);
                else
                    sf.lineAllows[static_cast<int>(i) + 1].insert(rule);
            }
            text = m.suffix();
        }
    }
}

bool
suppressed(const SourceFile &sf, int line, const std::string &rule)
{
    if (sf.fileAllows.count(rule))
        return true;
    for (int l : {line, line - 1}) {
        auto it = sf.lineAllows.find(l);
        if (it != sf.lineAllows.end() && it->second.count(rule))
            return true;
    }
    return false;
}

void
report(const SourceFile &sf, int line, const std::string &rule,
       const std::string &message, std::vector<Diagnostic> &out)
{
    if (suppressed(sf, line, rule))
        return;
    out.push_back(Diagnostic{sf.displayPath, line, rule, message});
}

// ---------------------------------------------------------------------
// Pattern rules: a regex matched per code line, scoped by path.

struct PatternRule {
    const char *rule;
    std::regex re;
    const char *message;
};

const std::vector<PatternRule> &
patternRules()
{
    static const std::vector<PatternRule> rules = [] {
        std::vector<PatternRule> r;
        auto add = [&r](const char *rule, const char *re,
                        const char *msg) {
            r.push_back(PatternRule{rule, std::regex(re), msg});
        };
        add("nondeterminism", R"(\b(rand|srand)\s*\()",
            "libc PRNG call; use bctrl::Random so traces are "
            "reproducible");
        add("nondeterminism", R"(\brandom_device\b)",
            "std::random_device is nondeterministic; seed "
            "bctrl::Random explicitly");
        add("nondeterminism",
            R"(\b(system_clock|steady_clock|high_resolution_clock)\b)",
            "wall-clock time in simulation code; use curTick()");
        add("nondeterminism", R"(\bgettimeofday\b|\bclock\s*\(\s*\))",
            "wall-clock time in simulation code; use curTick()");
        add("nondeterminism", R"(\btime\s*\(\s*(NULL|nullptr|0|&))",
            "time() in simulation code; use curTick()");
        add("ptr-keyed-container", R"(\bunordered_(map|set)\s*<[^,>]*\*)",
            "pointer-keyed unordered container: iteration order "
            "depends on allocation; key by a stable id or use an "
            "ordered container");
        add("raw-event-new", R"(\bnew\s+[A-Za-z_]\w*Event\b)",
            "raw new of an Event subclass outside EventQueue; use "
            "scheduleLambda() or a value-owned event");
        add("catch-all", R"(\bcatch\s*\(\s*\.\.\.\s*\))",
            "catch (...) swallows panic/fatal paths; catch a concrete "
            "type or let it propagate");
        add("addr-arith",
            R"((<<|>>)\s*(pageShift|blockShift|largePageShift)\b)",
            "raw shift by a page/block constant; use pageNumber/"
            "pageBase/blockNumber/blockBase from mem/addr.hh");
        add("addr-arith", R"(&\s*~?\s*(pageMask|blockMask)\b)",
            "raw mask by a page/block constant; use pageAlign/"
            "pageOffset/blockAlign from mem/addr.hh");
        add("raw-packet-alloc",
            R"(\bmake_shared\s*<\s*Packet\s*>|\bnew\s+Packet\b|\bPacket::make\s*\()",
            "direct Packet minting bypasses the pool; use "
            "allocPacket(pool, ...) (or PacketPool::make) so "
            "steady-state traffic stays allocation-free");
        add("raw-console-io",
            R"(\b(printf|fprintf|vprintf|vfprintf|puts|fputs|putchar)\s*\(|\bstd\s*::\s*(cout|cerr|clog)\b)",
            "raw console I/O in library code; use warn()/inform()/"
            "panic() from sim/logging.hh, or take an std::ostream "
            "parameter so callers choose the sink");
        add("unseeded-random",
            R"(\b(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux(24|48)(_base)?|knuth_b)\b)",
            "std::<random> engine in simulation code; draw from the "
            "seeded bctrl::Random (sim/random.hh) so every run is "
            "replayable from its seed");
        // this->/self-> reaches are by definition the caller's own
        // queue; any other object prefix is a cross-component reach.
        add("cross-domain-direct-call",
            R"((\)|\]|\b(?!this\b|self\b)[A-Za-z_]\w*)\s*(\.|->)\s*eventQueue\s*\(\s*\)\s*\.\s*(schedule|scheduleLambda|reschedule)\s*\()",
            "scheduling through another component's eventQueue() "
            "accessor; in shard mode this is a zero-lookahead "
            "cross-domain coupling — schedule on your own queue (the "
            "mailbox routes it) or annotate a same-domain reach with "
            "bclint:allow");
        return r;
    }();
    return rules;
}

bool
ruleAppliesToPath(const SourceFile &sf, const std::string &rule)
{
    if (sf.selfTest)
        return true;
    if (rule == "raw-event-new") {
        // The queue implementation is the one legitimate owner of
        // heap-allocated lambda events.
        return sf.relPath != "src/sim/event_queue.cc" &&
               sf.relPath != "src/sim/event_queue.hh";
    }
    if (rule == "addr-arith")
        return sf.relPath != "src/mem/addr.hh";
    if (rule == "raw-packet-alloc") {
        // The pool and its heap fallback are the only legitimate
        // minters; tests/tools construct packets freely (no pool).
        return startsWith(sf.relPath, "src/") &&
               sf.relPath != "src/mem/packet.hh" &&
               sf.relPath != "src/mem/packet.cc" &&
               sf.relPath != "src/mem/packet_pool.hh" &&
               sf.relPath != "src/mem/packet_pool.cc";
    }
    if (rule == "namespace-bctrl")
        return startsWith(sf.relPath, "src/");
    if (rule == "raw-console-io") {
        // Library code must not write to the process console: many
        // Systems share one process under the sweep engine. The logging
        // layer and the contract-failure reporter are the sanctioned
        // sinks; drivers/tests/benches own their stdout.
        return startsWith(sf.relPath, "src/") &&
               sf.relPath != "src/sim/logging.hh" &&
               sf.relPath != "src/sim/logging.cc" &&
               sf.relPath != "src/sim/contracts.cc";
    }
    if (rule == "mutable-global-state") {
        // The simulation library must tolerate concurrent Systems
        // (sweep engine); drivers and tests own their process.
        return startsWith(sf.relPath, "src/");
    }
    if (rule == "unseeded-random") {
        // The one sanctioned generator lives in sim/random.hh; tools
        // and tests may use std engines for host-side shuffling.
        return startsWith(sf.relPath, "src/") &&
               sf.relPath != "src/sim/random.hh" &&
               sf.relPath != "src/sim/random.cc";
    }
    if (rule == "cross-domain-direct-call") {
        // Library code only: tests/benches/tools drive queues from the
        // outside by design (no shard context to violate).
        return startsWith(sf.relPath, "src/");
    }
    return true;
}

void
runPatternRules(const SourceFile &sf, std::vector<Diagnostic> &out)
{
    for (const PatternRule &pr : patternRules()) {
        if (!ruleAppliesToPath(sf, pr.rule))
            continue;
        for (std::size_t i = 0; i < sf.code.size(); ++i) {
            if (std::regex_search(sf.code[i], pr.re))
                report(sf, static_cast<int>(i) + 1, pr.rule, pr.message,
                       out);
        }
    }
}

// ---------------------------------------------------------------------
// include-guard: headers open with #ifndef/#define of the canonical
// guard derived from the path (src/ prefix stripped).

std::string
expectedGuard(const std::string &relPath)
{
    std::string p = relPath;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "BCTRL_";
    for (char c : p) {
        guard += std::isalnum(static_cast<unsigned char>(c))
                     ? static_cast<char>(
                           std::toupper(static_cast<unsigned char>(c)))
                     : '_';
    }
    return guard;
}

void
checkIncludeGuard(const SourceFile &sf, std::vector<Diagnostic> &out)
{
    if (!endsWith(sf.relPath, ".hh") && !endsWith(sf.relPath, ".h"))
        return;

    const std::string guard = expectedGuard(
        sf.selfTest ? fs::path(sf.relPath).filename().string()
                    : sf.relPath);

    static const std::regex ifndefRe(R"(^\s*#\s*ifndef\s+(\w+))");
    static const std::regex defineRe(R"(^\s*#\s*define\s+(\w+))");

    int directiveIndex = 0;
    std::string openGuard;
    for (std::size_t i = 0; i < sf.code.size(); ++i) {
        const std::string &line = sf.code[i];
        if (line.find('#') == std::string::npos)
            continue;
        std::smatch m;
        if (directiveIndex == 0) {
            if (!std::regex_search(line, m, ifndefRe)) {
                report(sf, static_cast<int>(i) + 1, "include-guard",
                       "first preprocessor directive must be '#ifndef " +
                           guard + "'",
                       out);
                return;
            }
            openGuard = m[1].str();
            if (openGuard != guard) {
                report(sf, static_cast<int>(i) + 1, "include-guard",
                       "guard '" + openGuard + "' should be '" + guard +
                           "'",
                       out);
                return;
            }
            directiveIndex = 1;
        } else {
            if (!std::regex_search(line, m, defineRe) ||
                m[1].str() != openGuard) {
                report(sf, static_cast<int>(i) + 1, "include-guard",
                       "'#ifndef " + openGuard +
                           "' must be followed by '#define " + openGuard +
                           "'",
                       out);
            }
            return;
        }
    }
    if (directiveIndex == 0)
        report(sf, 1, "include-guard",
               "header has no include guard (expected '" + guard + "')",
               out);
}

void
checkNamespace(const SourceFile &sf, std::vector<Diagnostic> &out)
{
    if (!ruleAppliesToPath(sf, "namespace-bctrl"))
        return;
    static const std::regex nsRe(R"(\bnamespace\s+bctrl\b)");
    for (const std::string &line : sf.code)
        if (std::regex_search(line, nsRe))
            return;
    report(sf, 1, "namespace-bctrl",
           "no 'namespace bctrl' in a src/ file", out);
}

// ---------------------------------------------------------------------
// missing-override: a brace-tracking scan that knows which class bodies
// have a base clause.

void
checkMissingOverride(const SourceFile &sf, std::vector<Diagnostic> &out)
{
    enum class ScopeKind { plain, classNoBase, classWithBase };
    std::vector<ScopeKind> scopes;

    bool pendingClass = false;   // between 'class X' and '{' or ';'
    bool pendingBase = false;    // saw ':' in the pending class head
    bool lastWasEnum = false;    // 'enum class' is not a class
    bool inVirtualStmt = false;  // between 'virtual' and ';' or '{'
    int virtualLine = 0;
    std::string virtualText;

    auto flushVirtual = [&](bool bodyFollows) {
        inVirtualStmt = false;
        std::string t = virtualText;
        // Trim trailing whitespace for the pure-virtual check.
        t.erase(t.find_last_not_of(" \t") + 1);
        const bool isOverride =
            t.find("override") != std::string::npos ||
            t.find("final") != std::string::npos;
        const bool isPure = !bodyFollows &&
                            (endsWith(t, "= 0") || endsWith(t, "=0"));
        const bool isDtor = t.find('~') != std::string::npos;
        if (!isOverride && !isPure && !isDtor)
            report(sf, virtualLine, "missing-override",
                   "virtual member of a derived class without "
                   "'override' (new pure-virtual interface points are "
                   "exempt)",
                   out);
    };

    for (std::size_t li = 0; li < sf.code.size(); ++li) {
        const std::string &line = sf.code[li];
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                std::size_t j = i;
                while (j < line.size() &&
                       (std::isalnum(
                            static_cast<unsigned char>(line[j])) ||
                        line[j] == '_'))
                    ++j;
                const std::string word = line.substr(i, j - i);
                if (word == "enum") {
                    lastWasEnum = true;
                } else if (word == "class" || word == "struct") {
                    if (!lastWasEnum && !pendingClass &&
                        !inVirtualStmt) {
                        pendingClass = true;
                        pendingBase = false;
                    }
                    lastWasEnum = false;
                } else if (word == "virtual") {
                    if (!scopes.empty() &&
                        scopes.back() == ScopeKind::classWithBase &&
                        !pendingClass && !inVirtualStmt) {
                        inVirtualStmt = true;
                        virtualLine = static_cast<int>(li) + 1;
                        virtualText.clear();
                    }
                    lastWasEnum = false;
                } else {
                    lastWasEnum = false;
                }
                if (inVirtualStmt && word != "virtual") {
                    virtualText += word;
                    virtualText += ' ';
                }
                i = j - 1;
                continue;
            }
            if (inVirtualStmt && c != '{' && c != ';' &&
                !std::isspace(static_cast<unsigned char>(c))) {
                virtualText += c;
                // Normalize '=0' to '= 0' so the pure-virtual check is
                // spacing-insensitive.
                if (c == '=' || c == '~')
                    virtualText += ' ';
            }
            switch (c) {
              case ':':
                if (pendingClass) {
                    const bool doubleColon =
                        (i + 1 < line.size() && line[i + 1] == ':') ||
                        (i > 0 && line[i - 1] == ':');
                    if (!doubleColon)
                        pendingBase = true;
                }
                break;
              case ';':
                if (pendingClass)
                    pendingClass = false; // forward declaration
                else if (inVirtualStmt)
                    flushVirtual(false);
                break;
              case '{':
                if (inVirtualStmt)
                    flushVirtual(true); // inline body follows
                if (pendingClass) {
                    scopes.push_back(pendingBase
                                         ? ScopeKind::classWithBase
                                         : ScopeKind::classNoBase);
                    pendingClass = false;
                } else {
                    scopes.push_back(ScopeKind::plain);
                }
                break;
              case '}':
                if (!scopes.empty())
                    scopes.pop_back();
                break;
              default:
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// mutable-global-state: a brace-tracking scan that flags variable
// definitions at namespace scope unless they are immutable (const,
// constexpr, constinit) or sanctioned cross-thread state (std::atomic,
// thread_local). Function definitions, type definitions, templates and
// using/typedef aliases are exempt; anything containing '(' is treated
// as a declaration, not a variable, to stay conservative.

bool
mutableGlobalHead(const std::string &head)
{
    if (head.find('(') != std::string::npos)
        return false;

    static const std::set<std::string> kExempt = {
        "namespace",  "using",        "typedef",    "class",
        "struct",     "enum",         "union",      "template",
        "extern",     "friend",       "static_assert",
        "const",      "constexpr",    "constinit",  "thread_local",
        "atomic",     "operator",     "asm",        "concept",
    };

    std::size_t words = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
        const char c = head[i];
        if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_')
            continue;
        std::size_t j = i;
        while (j < head.size() &&
               (std::isalnum(static_cast<unsigned char>(head[j])) ||
                head[j] == '_'))
            ++j;
        if (kExempt.count(head.substr(i, j - i)))
            return false;
        ++words;
        i = j;
    }
    // A definition needs at least a type and a name.
    return words >= 2;
}

void
checkMutableGlobals(const SourceFile &sf, std::vector<Diagnostic> &out)
{
    if (!ruleAppliesToPath(sf, "mutable-global-state"))
        return;

    // Scope stack: true = namespace (or global) scope, false = any
    // other brace scope (class, function, enum, initializer, ...).
    std::vector<bool> scopes;
    std::string head;
    int headLine = 0;

    auto atNamespaceScope = [&scopes]() {
        for (bool ns : scopes)
            if (!ns)
                return false;
        return true;
    };
    auto headIsNamespace = [&head]() {
        static const std::regex nsRe(R"(\bnamespace\b)");
        return std::regex_search(head, nsRe);
    };

    for (std::size_t li = 0; li < sf.code.size(); ++li) {
        const std::string &line = sf.code[li];
        const std::size_t first = line.find_first_not_of(" \t");
        if (first != std::string::npos && line[first] == '#')
            continue; // preprocessor line
        for (const char c : line) {
            switch (c) {
              case '{':
                if (headIsNamespace()) {
                    scopes.push_back(true);
                } else {
                    // Brace-initialized definition: `int x{3};` or
                    // `T t = {...};` — judge the head before the brace.
                    if (atNamespaceScope() && mutableGlobalHead(head))
                        report(sf, headLine, "mutable-global-state",
                               "mutable variable at namespace scope; "
                               "make it per-System, const, or "
                               "std::atomic",
                               out);
                    scopes.push_back(false);
                }
                head.clear();
                break;
              case '}':
                if (!scopes.empty())
                    scopes.pop_back();
                head.clear();
                break;
              case ';':
                if (atNamespaceScope() && mutableGlobalHead(head))
                    report(sf, headLine, "mutable-global-state",
                           "mutable variable at namespace scope; make "
                           "it per-System, const, or std::atomic",
                           out);
                head.clear();
                break;
              default:
                // Initializers can contain arbitrary expressions
                // (including braces on the RHS of `=`); judging the
                // head up to '=' is enough, so stop accumulating.
                if (head.find('=') != std::string::npos)
                    break;
                if (head.empty()) {
                    if (std::isspace(static_cast<unsigned char>(c)))
                        break; // never start a head with whitespace
                    headLine = static_cast<int>(li) + 1;
                }
                head += c;
                break;
            }
        }
        if (!head.empty() && head.find('=') == std::string::npos)
            head += ' ';
    }
}

// ---------------------------------------------------------------------
// Driver.

/**
 * Tally the file's bclint:allow annotations of budgeted rules into
 * @p tally (rule -> "file:line" sites). In self-test mode the tally is
 * skipped; instead, fixtures named suppression-budget__* report every
 * budgeted allow as a finding (suppressible like any other rule), so
 * the fixture suite proves the budget rule fires and suppresses.
 */
void
tallyBudgetedAllows(const SourceFile &sf,
                    std::map<std::string, std::vector<std::string>> *tally,
                    std::vector<Diagnostic> &out)
{
    const bool budgetFixture =
        sf.selfTest && startsWith(sf.relPath, "suppression-budget__");
    for (const AllowBudget &b : kAllowBudgets) {
        if (!budgetFixture && !ruleAppliesToPath(sf, b.rule))
            continue;
        for (const auto &[ln, rules] : sf.lineAllows) {
            if (!rules.count(b.rule))
                continue;
            if (budgetFixture)
                report(sf, ln, "suppression-budget",
                       std::string("bclint:allow(") + b.rule +
                           ") counts against the pinned tree-wide "
                           "inventory",
                       out);
            else if (tally != nullptr)
                (*tally)[b.rule].push_back(sf.relPath + ":" +
                                           std::to_string(ln));
        }
        if (sf.fileAllows.count(b.rule) && !budgetFixture &&
            tally != nullptr)
            (*tally)[b.rule].push_back(sf.relPath + ":allow-file");
    }
}

bool
scanFile(const fs::path &path, const std::string &relPath, bool selfTest,
         std::vector<Diagnostic> &out, std::string *error,
         std::map<std::string, std::vector<std::string>> *budgetTally =
             nullptr)
{
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open " + path.string();
        return false;
    }
    SourceFile sf;
    sf.displayPath = path.string();
    sf.relPath = relPath;
    sf.selfTest = selfTest;
    std::string line;
    while (std::getline(in, line))
        sf.raw.push_back(line);

    splitViews(sf);
    parseSuppressions(sf);
    for (const auto &[ln, rules] : sf.lineAllows) {
        for (const std::string &r : rules) {
            if (!knownRule(r))
                out.push_back(Diagnostic{
                    sf.displayPath, ln, "unknown-rule",
                    "suppression names unknown rule '" + r + "'"});
        }
    }

    tallyBudgetedAllows(sf, budgetTally, out);
    runPatternRules(sf, out);
    checkIncludeGuard(sf, out);
    checkNamespace(sf, out);
    checkMissingOverride(sf, out);
    checkMutableGlobals(sf, out);
    return true;
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h";
}

void
collectFiles(const fs::path &root, std::vector<fs::path> &out)
{
    static const char *kDirs[] = {"src", "tests", "bench", "tools",
                                  "examples"};
    for (const char *dir : kDirs) {
        const fs::path base = root / dir;
        if (!fs::exists(base))
            continue;
        for (auto it = fs::recursive_directory_iterator(base);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory()) {
                const std::string name = it->path().filename().string();
                if (startsWith(name, "build") ||
                    name == "lint_fixtures" || name == ".git")
                    it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && isSourceFile(it->path()))
                out.push_back(it->path());
        }
    }
    std::sort(out.begin(), out.end());
}

void
printDiagnostics(const std::vector<Diagnostic> &diags)
{
    for (const Diagnostic &d : diags)
        std::fprintf(stderr, "%s:%d: error: [%s] %s\n", d.file.c_str(),
                     d.line, d.rule.c_str(), d.message.c_str());
}

int
selfTest(const fs::path &dir)
{
    if (!fs::exists(dir)) {
        std::fprintf(stderr, "bclint: fixture dir %s does not exist\n",
                     dir.string().c_str());
        return 2;
    }
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.is_regular_file() && isSourceFile(entry.path()))
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());

    int failures = 0;
    std::set<std::string> rulesWithFixtures;
    for (const fs::path &file : files) {
        const std::string stem = file.stem().string();
        const std::size_t sep = stem.find("__");
        if (sep == std::string::npos) {
            std::fprintf(stderr,
                         "FAIL %s: fixture names must look like "
                         "<rule-id>__fires.* or <rule-id>__suppressed.*\n",
                         file.string().c_str());
            ++failures;
            continue;
        }
        const std::string rule = stem.substr(0, sep);
        const std::string kind = stem.substr(sep + 2);
        if (!knownRule(rule)) {
            std::fprintf(stderr, "FAIL %s: unknown rule '%s'\n",
                         file.string().c_str(), rule.c_str());
            ++failures;
            continue;
        }

        std::vector<Diagnostic> diags;
        std::string error;
        if (!scanFile(file, file.filename().string(), true, diags,
                      &error)) {
            std::fprintf(stderr, "FAIL %s: %s\n", file.string().c_str(),
                         error.c_str());
            ++failures;
            continue;
        }

        std::size_t ofRule = 0, ofOthers = 0;
        for (const Diagnostic &d : diags)
            (d.rule == rule ? ofRule : ofOthers) += 1;

        bool ok;
        if (kind == "fires") {
            ok = ofRule >= 1 && ofOthers == 0;
            rulesWithFixtures.insert(rule);
        } else if (kind == "suppressed") {
            ok = diags.empty();
        } else {
            std::fprintf(stderr, "FAIL %s: unknown fixture kind '%s'\n",
                         file.string().c_str(), kind.c_str());
            ++failures;
            continue;
        }

        if (ok) {
            std::printf("PASS %s\n", file.filename().string().c_str());
        } else {
            std::fprintf(stderr,
                         "FAIL %s: expected %s, got %zu findings of "
                         "'%s' and %zu of other rules\n",
                         file.string().c_str(),
                         kind == "fires"
                             ? "only findings of the named rule"
                             : "no findings",
                         ofRule, rule.c_str(), ofOthers);
            printDiagnostics(diags);
            ++failures;
        }
    }

    for (const RuleInfo &r : kRules) {
        if (!rulesWithFixtures.count(r.id)) {
            std::fprintf(stderr,
                         "FAIL missing '<%s>__fires' fixture: every "
                         "rule must prove it fires\n",
                         r.id);
            ++failures;
        }
    }

    if (failures != 0) {
        std::fprintf(stderr, "bclint self-test: %d failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("bclint self-test: all fixtures pass\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    fs::path selfTestDir;
    bool doSelfTest = false;
    std::vector<fs::path> explicitFiles;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bclint: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next();
        } else if (arg == "--self-test") {
            doSelfTest = true;
            selfTestDir = next();
        } else if (arg == "--list-rules") {
            for (const RuleInfo &r : kRules)
                std::printf("%-20s %s\n", r.id, r.summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: bclint [--root DIR] [--self-test DIR] "
                "[--list-rules] [files...]\n"
                "Scans src/, tests/, bench/, tools/, examples/ under "
                "--root (default: cwd)\nunless explicit files are "
                "given. Exits 1 on any finding.\n");
            return 0;
        } else {
            explicitFiles.emplace_back(arg);
        }
    }

    if (doSelfTest)
        return selfTest(selfTestDir);

    const bool wholeTree = explicitFiles.empty();
    std::vector<fs::path> files = explicitFiles;
    if (files.empty()) {
        collectFiles(root, files);
        if (files.empty()) {
            std::fprintf(stderr,
                         "bclint: no sources found under '%s' — wrong "
                         "--root?\n",
                         root.string().c_str());
            return 2;
        }
    }

    std::vector<Diagnostic> diags;
    std::map<std::string, std::vector<std::string>> budgetTally;
    for (const fs::path &file : files) {
        std::string rel = fs::path(file).lexically_proximate(root)
                              .generic_string();
        std::string error;
        if (!scanFile(file, rel, false, diags, &error, &budgetTally)) {
            std::fprintf(stderr, "bclint: %s\n", error.c_str());
            return 2;
        }
    }

    // The pinned allow inventories only make sense against the whole
    // tree; a partial file list would always read as shrinkage.
    if (wholeTree) {
        for (const AllowBudget &b : kAllowBudgets) {
            const std::vector<std::string> &sites = budgetTally[b.rule];
            if (sites.size() == b.allowed)
                continue;
            std::string msg = "'" + std::string(b.rule) + "' has " +
                              std::to_string(sites.size()) +
                              " bclint:allow annotation(s) but the "
                              "budget pins " +
                              std::to_string(b.allowed) + " (";
            for (std::size_t i = 0; i < sites.size(); ++i)
                msg += (i != 0 ? ", " : "") + sites[i];
            msg += sites.size() > b.allowed
                       ? "): route the new schedule through the "
                         "caller's own queue instead of annotating it"
                       : "): an annotation was removed — lower the "
                         "kAllowBudgets pin to match";
            diags.push_back(Diagnostic{root.string(), 0,
                                       "suppression-budget", msg});
        }
    }

    if (!diags.empty()) {
        std::sort(diags.begin(), diags.end(),
                  [](const Diagnostic &a, const Diagnostic &b) {
                      if (a.file != b.file)
                          return a.file < b.file;
                      return a.line < b.line;
                  });
        printDiagnostics(diags);
        std::fprintf(stderr, "bclint: %zu finding(s) in %zu file(s)\n",
                     diags.size(), files.size());
        return 1;
    }
    std::printf("bclint: %zu files clean\n", files.size());
    return 0;
}
