/**
 * @file
 * Stress test for the SPSC cross-domain mailbox ring (sim/mailbox.hh).
 *
 * One real producer thread and one real consumer thread hammer a ring
 * with randomized burst sizes and pauses, so the index handoff and the
 * slot writes are exercised under genuine concurrency — including full
 * rings (producer spins on tryPush) and empty rings (consumer spins on
 * pop), which are where an acquire/release mistake would surface. The
 * payload carries a derived checksum so a torn or stale slot read is
 * caught even when the sequence number happens to look right.
 *
 * A small power-of-two capacity makes the indices wrap thousands of
 * times per run; a single-threaded pass checks the exact capacity
 * edge (full ring refuses, one pop reopens it). The binary is part of
 * the plain test suite and is also built and run under ThreadSanitizer
 * by tools/tsan_sweep_smoke.sh, where any data race is fatal.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "sim/mailbox.hh"

using namespace bctrl;

namespace {

/** Deterministic xorshift so failures reproduce. */
struct Rng {
    std::uint64_t x;
    explicit Rng(std::uint64_t seed) : x(seed | 1) {}
    std::uint64_t
    next()
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    }
};

/** A payload wide enough that a torn slot copy can be detected. */
struct Item {
    std::uint64_t seq = 0;
    std::uint64_t pad0 = 0;
    std::uint64_t pad1 = 0;
    std::uint64_t check = 0;
};

std::uint64_t
checksumOf(std::uint64_t seq)
{
    std::uint64_t h = seq * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return h ^ 0xcbf29ce484222325ULL;
}

int failures = 0;

void
expect(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    }
}

/**
 * Two threads, randomized cadence: the producer pushes @p total items
 * in bursts of 1-13 separated by occasional yields; the consumer pops
 * in bursts of 1-17. With Capacity far below the burst-count product,
 * both the full-ring and empty-ring paths run constantly and the
 * indices wrap many times.
 */
template <std::size_t Capacity>
void
stressPair(std::uint64_t total, std::uint64_t seed)
{
    SpscRing<Item, Capacity> ring;
    std::atomic<std::uint64_t> producerSpins{0};

    std::thread producer([&] {
        Rng rng(seed);
        std::uint64_t seq = 0;
        while (seq < total) {
            std::uint64_t burst = 1 + rng.next() % 13;
            while (burst-- > 0 && seq < total) {
                Item it;
                it.seq = seq;
                it.pad0 = ~seq;
                it.pad1 = seq << 7;
                it.check = checksumOf(seq);
                while (!ring.tryPush(it)) {
                    producerSpins.fetch_add(
                        1, std::memory_order_relaxed);
                    std::this_thread::yield();
                }
                ++seq;
            }
            if (rng.next() % 31 == 0)
                std::this_thread::yield();
        }
    });

    Rng rng(seed ^ 0xdecafbadULL);
    std::uint64_t expected = 0;
    bool ordered = true;
    bool intact = true;
    while (expected < total) {
        std::uint64_t burst = 1 + rng.next() % 17;
        Item it;
        while (burst-- > 0 && expected < total) {
            while (!ring.pop(it))
                std::this_thread::yield();
            ordered = ordered && it.seq == expected;
            intact = intact && it.check == checksumOf(it.seq) &&
                     it.pad0 == ~it.seq && it.pad1 == it.seq << 7;
            ++expected;
        }
        if (rng.next() % 37 == 0)
            std::this_thread::yield();
    }
    producer.join();

    expect(ordered, "ring delivered items out of FIFO order");
    expect(intact, "ring delivered a torn or stale payload");
    expect(ring.empty(), "ring not empty after consuming every item");
    Item leftover;
    expect(!ring.pop(leftover), "pop succeeded on a drained ring");
    std::printf("capacity %zu: %llu items, %llu full-ring spins\n",
                Capacity, (unsigned long long)total,
                (unsigned long long)
                    producerSpins.load(std::memory_order_relaxed));
}

/** Single-threaded exact capacity edge: full refuses, pop reopens. */
template <std::size_t Capacity>
void
capacityEdge()
{
    SpscRing<Item, Capacity> ring;
    Item it;
    for (std::uint64_t s = 0; s < Capacity; ++s) {
        it.seq = s;
        expect(ring.tryPush(it), "push below capacity refused");
    }
    it.seq = Capacity;
    expect(!ring.tryPush(it), "push into a full ring succeeded");
    Item out;
    expect(ring.pop(out) && out.seq == 0, "head of full ring wrong");
    expect(ring.tryPush(it), "push after one pop refused");
    // Drain: 1..Capacity-1 then the late element, exact FIFO.
    for (std::uint64_t s = 1; s < Capacity; ++s)
        expect(ring.pop(out) && out.seq == s, "drain order wrong");
    expect(ring.pop(out) && out.seq == Capacity,
           "late element lost or reordered");
    expect(ring.empty() && !ring.pop(out), "ring not drained");
}

} // namespace

int
main()
{
    // Tiny ring: indices wrap every 8 pushes, the full/empty edges
    // dominate. Production-sized ring: the steady-flow regime.
    capacityEdge<8>();
    capacityEdge<crossMailboxCapacity>();
    stressPair<8>(400'000, 0x5eed0001);
    stressPair<64>(400'000, 0x5eed0002);
    stressPair<crossMailboxCapacity>(1'000'000, 0x5eed0003);
    if (failures != 0) {
        std::fprintf(stderr, "mailbox stress: %d failure(s)\n",
                     failures);
        return 1;
    }
    std::printf("mailbox stress: clean\n");
    return 0;
}
