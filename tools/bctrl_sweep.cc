/**
 * @file
 * bctrl_sweep: parallel sweep driver for the Border Control simulator.
 *
 * Runs a (workload × safety model × GPU profile) cross product through
 * the worker-pool sweep engine (src/sim/sweep.hh) and writes a JSON
 * report — per-run GPU cycles, overhead vs. the unsafe baseline, host
 * wall time, and host events/second — to BENCH_sweep.json. Results are
 * deterministic and bit-identical to a serial run whatever --jobs is.
 *
 * Examples:
 *
 *   bctrl_sweep                                # full Fig 4 sweep
 *   bctrl_sweep --jobs 4 --compare-serial      # measure the speedup
 *   bctrl_sweep --micro --jobs 2               # quick smoke (CI)
 *   bctrl_sweep --workloads bfs,lud --safety bc-bcc,ats-only
 *   bctrl_sweep --micro --trace=BCC,ProtTable --trace-out=t.json
 *   bctrl_sweep --micro --profile --stats-json=stats.json
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"

using namespace bctrl;
using namespace bctrl::bench;

namespace {

struct NamedSafety {
    const char *token;
    SafetyModel model;
};

constexpr NamedSafety kSafeties[] = {
    {"ats-only", SafetyModel::atsOnlyIommu},
    {"full-iommu", SafetyModel::fullIommu},
    {"capi", SafetyModel::capiLike},
    {"bc-nobcc", SafetyModel::borderControlNoBcc},
    {"bc-bcc", SafetyModel::borderControlBcc},
};

const char *
safetyToken(SafetyModel m)
{
    for (const NamedSafety &s : kSafeties)
        if (s.model == m)
            return s.token;
    return "?";
}

const char *
profileToken(GpuProfile p)
{
    return p == GpuProfile::highlyThreaded ? "highly" : "moderate";
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --jobs N           worker threads (default: all hardware "
        "threads,\n"
        "                     or $BCTRL_SWEEP_JOBS)\n"
        "  --workloads LIST   comma-separated workloads (default: the\n"
        "                     seven Rodinia proxies)\n"
        "  --safety LIST      comma-separated of ats-only, full-iommu,\n"
        "                     capi, bc-nobcc, bc-bcc (default: all "
        "five)\n"
        "  --profiles LIST    comma-separated of highly, moderate\n"
        "                     (default: both)\n"
        "  --scale N          workload scale factor (default: 1)\n"
        "  --seed N           workload RNG seed (default: 1)\n"
        "  --micro            shortcut: --workloads "
        "uniform,stream,strided\n"
        "  --compare-serial   also run serially and report the "
        "speedup\n"
        "  --parallel-loop    drive each run with the domain-sharded\n"
        "                     parallel event loop; with "
        "--compare-serial\n"
        "                     the check pits it against the serial "
        "loop\n"
        "  --out FILE         JSON report path (default: "
        "BENCH_sweep.json)\n"
        "  --trace FLAGS      enable tracing: comma-separated of BCC,\n"
        "                     ProtTable, Coherence, TLB, DRAM, Cache,\n"
        "                     PacketLife, or all\n"
        "  --trace-out FILE   Chrome-trace output (default: "
        "trace.json);\n"
        "                     load in ui.perfetto.dev or "
        "chrome://tracing\n"
        "  --stats-json FILE  write every run's full stats as JSON\n"
        "  --profile          attribute host wall time per component\n"
        "                     (adds a \"profile\" block to the "
        "report)\n"
        "  --quiet            suppress the per-run progress table\n"
        "  --help             this text\n",
        prog);
}

struct Totals {
    double hostSeconds = 0;
    std::uint64_t hostEvents = 0;
};

Totals
totalsOf(const std::vector<SweepOutcome> &outcomes, double wall_seconds)
{
    Totals t;
    t.hostSeconds = wall_seconds;
    for (const SweepOutcome &o : outcomes)
        t.hostEvents += o.hostEvents;
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogVerbose(false);

    unsigned jobs = 0; // 0 = sweepJobs() (env or hardware)
    std::vector<std::string> workloads = rodiniaWorkloadNames();
    std::vector<SafetyModel> safeties;
    for (const NamedSafety &s : kSafeties)
        safeties.push_back(s.model);
    std::vector<GpuProfile> profiles = {GpuProfile::highlyThreaded,
                                        GpuProfile::moderatelyThreaded};
    SystemConfig base;
    std::string out_path = "BENCH_sweep.json";
    std::string trace_flags;
    std::string trace_out = "trace.json";
    std::string stats_json_path;
    bool profile = false;
    bool compare_serial = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // The newer options also accept --opt=value in one token.
        std::string inline_value;
        bool has_inline_value = false;
        if (const std::size_t eq = arg.find('=');
            eq != std::string::npos && arg.rfind("--", 0) == 0) {
            inline_value = arg.substr(eq + 1);
            has_inline_value = true;
            arg = arg.substr(0, eq);
        }
        auto next = [&]() -> std::string {
            if (has_inline_value)
                return inline_value;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--workloads") {
            workloads = splitList(next());
        } else if (arg == "--safety") {
            safeties.clear();
            for (const std::string &tok : splitList(next())) {
                bool found = false;
                for (const NamedSafety &s : kSafeties) {
                    if (tok == s.token) {
                        safeties.push_back(s.model);
                        found = true;
                    }
                }
                if (!found) {
                    std::fprintf(stderr, "unknown safety model '%s'\n",
                                 tok.c_str());
                    return 2;
                }
            }
        } else if (arg == "--profiles") {
            profiles.clear();
            for (const std::string &tok : splitList(next())) {
                if (tok == "highly") {
                    profiles.push_back(GpuProfile::highlyThreaded);
                } else if (tok == "moderate") {
                    profiles.push_back(GpuProfile::moderatelyThreaded);
                } else {
                    std::fprintf(stderr, "unknown profile '%s'\n",
                                 tok.c_str());
                    return 2;
                }
            }
        } else if (arg == "--scale") {
            base.workloadScale =
                std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--seed") {
            base.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--micro") {
            workloads = {"uniform", "stream", "strided"};
        } else if (arg == "--compare-serial") {
            compare_serial = true;
        } else if (arg == "--parallel-loop") {
            base.parallelLoop = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--trace") {
            trace_flags = next();
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (workloads.empty() || safeties.empty() || profiles.empty()) {
        std::fprintf(stderr, "empty sweep: need at least one workload, "
                             "safety model, and profile\n");
        return 2;
    }

    if (!trace_flags.empty()) {
        std::string err;
        if (!trace::parseFlags(trace_flags, base.traceMask, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
    }
    base.hostProfile = profile;

    const std::vector<SweepPoint> points =
        matrixPoints(workloads, safeties, profiles, base);
    const unsigned effective_jobs = jobs != 0 ? jobs : sweepJobs();

    SweepOptions sweep_opts;
    sweep_opts.jobs = effective_jobs;
    sweep_opts.captureStatsJson = !stats_json_path.empty();
    // The bit-identity check below compares the sim-only stats dump of
    // every run, not just the headline RunResult counters.
    sweep_opts.captureSimStats = compare_serial;

    std::fprintf(stderr, "sweep: %zu runs on %u worker(s)\n",
                 points.size(), effective_jobs);

    // Host-side wall-clock measurement (never feeds simulated state).
    // bclint:allow(nondeterminism)
    const auto now = []() {
        // bclint:allow(nondeterminism)
        return std::chrono::steady_clock::now();
    };

    const auto par_start = now();
    const std::vector<SweepOutcome> outcomes =
        runSweep(points, sweep_opts);
    const std::chrono::duration<double> par_elapsed = now() - par_start;
    const Totals par = totalsOf(outcomes, par_elapsed.count());

    double serial_seconds = 0;
    double speedup = 0;
    if (compare_serial) {
        // The oracle never uses the sharded loop: with --parallel-loop
        // this comparison is the sharded-vs-serial bit-identity check.
        SystemConfig serial_base = base;
        serial_base.parallelLoop = false;
        const std::vector<SweepPoint> serial_points =
            matrixPoints(workloads, safeties, profiles, serial_base);
        SweepOptions serial_opts;
        serial_opts.jobs = 1;
        serial_opts.captureSimStats = true;
        const auto ser_start = now();
        const std::vector<SweepOutcome> serial_outcomes =
            runSweep(serial_points, serial_opts);
        const std::chrono::duration<double> ser_elapsed =
            now() - ser_start;
        serial_seconds = ser_elapsed.count();
        speedup = par.hostSeconds > 0
                      ? serial_seconds / par.hostSeconds
                      : 0.0;
        // Cross-check determinism: the parallel sweep must agree with
        // the serial one bit for bit — every RunResult counter and the
        // entire simulated-state stats dump, so a divergence anywhere
        // in any component fails the run even when the headline
        // numbers happen to agree.
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const RunResult &a = outcomes[i].result;
            const RunResult &b = serial_outcomes[i].result;
            if (a.runtimeTicks != b.runtimeTicks ||
                a.gpuCycles != b.gpuCycles || a.memOps != b.memOps ||
                a.borderRequests != b.borderRequests ||
                a.bccHits != b.bccHits || a.bccMisses != b.bccMisses ||
                a.violations != b.violations ||
                a.downgrades != b.downgrades ||
                a.pageFaults != b.pageFaults ||
                a.translations != b.translations ||
                a.pageWalks != b.pageWalks ||
                outcomes[i].hostEvents != serial_outcomes[i].hostEvents) {
                std::fprintf(stderr,
                             "determinism violation at run %zu: "
                             "parallel and serial sweeps disagree\n",
                             i);
                return 1;
            }
            if (outcomes[i].simStatsDump !=
                serial_outcomes[i].simStatsDump) {
                std::fprintf(stderr,
                             "determinism violation at run %zu: "
                             "sim-stats dumps differ between the "
                             "parallel and serial sweeps\n",
                             i);
                return 1;
            }
        }
    }

    // Per-(profile, workload) baseline for overhead columns, when the
    // unsafe baseline is part of the sweep.
    std::size_t baseline_slot = safeties.size();
    for (std::size_t s = 0; s < safeties.size(); ++s)
        if (safeties[s] == SafetyModel::atsOnlyIommu)
            baseline_slot = s;

    if (!quiet) {
        std::printf("%-11s %-10s %-8s %14s %10s %10s %14s\n",
                    "workload", "safety", "profile", "gpuCycles",
                    "overhead", "host(s)", "events/s");
        for (const SweepOutcome &o : outcomes) {
            const std::size_t s = o.index % safeties.size();
            const std::size_t group = o.index - s;
            std::string overhead = "-";
            if (baseline_slot < safeties.size() &&
                s != baseline_slot) {
                const double base_cycles =
                    outcomes[group + baseline_slot].result.gpuCycles;
                if (base_cycles > 0)
                    overhead =
                        pct(o.result.gpuCycles / base_cycles - 1.0);
            }
            std::printf("%-11s %-10s %-8s %14.0f %10s %10.3f %14.0f\n",
                        o.workload.c_str(),
                        safetyToken(o.result.safety),
                        profileToken(o.result.profile),
                        o.result.gpuCycles, overhead.c_str(),
                        o.hostSeconds, o.hostEventsPerSec);
        }
        std::printf("\ntotal: %.3f s wall, %llu events, %.0f "
                    "events/s aggregate\n",
                    par.hostSeconds,
                    (unsigned long long)par.hostEvents,
                    par.hostSeconds > 0
                        ? static_cast<double>(par.hostEvents) /
                              par.hostSeconds
                        : 0.0);
        if (compare_serial)
            std::printf("serial: %.3f s wall -> speedup %.2fx with "
                        "%u worker(s)\n",
                        serial_seconds, speedup, effective_jobs);
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"bctrl-sweep-v1\",\n");
    std::fprintf(f, "  \"jobs\": %u,\n", effective_jobs);
    std::fprintf(f, "  \"parallel_loop\": %s,\n",
                 base.parallelLoop ? "true" : "false");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SweepOutcome &o = outcomes[i];
        const std::size_t s = i % safeties.size();
        const std::size_t group = i - s;
        std::string overhead = "null";
        if (baseline_slot < safeties.size() && s != baseline_slot) {
            const double base_cycles =
                outcomes[group + baseline_slot].result.gpuCycles;
            if (base_cycles > 0)
                overhead = formatDouble(
                    o.result.gpuCycles / base_cycles - 1.0);
        }
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"safety\": \"%s\", "
            "\"profile\": \"%s\", \"gpuCycles\": %s, "
            "\"runtimeTicks\": %llu, \"overheadVsBaseline\": %s, "
            "\"hostSeconds\": %s, \"hostEvents\": %llu, "
            "\"hostEventsPerSec\": %s}%s\n",
            o.workload.c_str(), safetyToken(o.result.safety),
            profileToken(o.result.profile),
            formatDouble(o.result.gpuCycles).c_str(),
            (unsigned long long)o.result.runtimeTicks, overhead.c_str(),
            formatDouble(o.hostSeconds).c_str(),
            (unsigned long long)o.hostEvents,
            formatDouble(o.hostEventsPerSec).c_str(),
            i + 1 < outcomes.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    // Geomean overheads per (profile, safety) when a baseline exists.
    std::fprintf(f, "  \"geomeanOverheads\": [");
    bool first_geomean = true;
    if (baseline_slot < safeties.size()) {
        for (std::size_t p = 0; p < profiles.size(); ++p) {
            for (std::size_t s = 0; s < safeties.size(); ++s) {
                if (s == baseline_slot)
                    continue;
                std::vector<double> overheads;
                for (std::size_t w = 0; w < workloads.size(); ++w) {
                    const std::size_t group =
                        (p * workloads.size() + w) * safeties.size();
                    const double base_cycles =
                        outcomes[group + baseline_slot]
                            .result.gpuCycles;
                    if (base_cycles > 0)
                        overheads.push_back(
                            outcomes[group + s].result.gpuCycles /
                                base_cycles -
                            1.0);
                }
                std::fprintf(
                    f, "%s\n    {\"profile\": \"%s\", \"safety\": "
                       "\"%s\", \"overhead\": %s}",
                    first_geomean ? "" : ",",
                    profileToken(profiles[p]),
                    safetyToken(safeties[s]),
                    formatDouble(geomeanOverhead(overheads)).c_str());
                first_geomean = false;
            }
        }
    }
    std::fprintf(f, "\n  ],\n");

    // Aggregate allocation profile across the whole sweep: how
    // allocation-free the hot request path was (one System per run).
    {
        std::uint64_t pool_allocs = 0, lambda_allocs = 0, spills = 0;
        std::uint64_t max_peak = 0;
        double mru_sum = 0;
        for (const SweepOutcome &o : outcomes) {
            pool_allocs += o.result.packetPoolAllocs;
            max_peak = std::max(max_peak, o.result.packetPoolPeak);
            lambda_allocs += o.result.lambdaPoolAllocs;
            spills += o.result.callbackHeapSpills;
            mru_sum += o.result.backingStoreMruHitRate;
        }
        std::fprintf(
            f,
            "  \"allocationProfile\": {\"packetPoolAllocs\": %llu, "
            "\"maxPacketPoolPeak\": %llu, \"lambdaPoolAllocs\": %llu, "
            "\"callbackHeapSpills\": %llu, "
            "\"meanBackingStoreMruHitRate\": %s},\n",
            (unsigned long long)pool_allocs,
            (unsigned long long)max_peak,
            (unsigned long long)lambda_allocs,
            (unsigned long long)spills,
            formatDouble(mru_sum /
                         static_cast<double>(outcomes.size()))
                .c_str());
    }

    // Host profile: where the simulator's own CPU time went, summed
    // across runs. Slot times are inclusive (scopes nest), so they are
    // read against the eventLoop total, not summed to it.
    if (profile) {
        std::fprintf(f, "  \"profile\": {\"slots\": [");
        for (std::size_t s = 0; s < HostProfiler::numSlots; ++s) {
            double seconds = 0;
            std::uint64_t calls = 0;
            for (const SweepOutcome &o : outcomes) {
                if (s < o.profileSeconds.size()) {
                    seconds += o.profileSeconds[s];
                    calls += o.profileCalls[s];
                }
            }
            std::fprintf(
                f,
                "%s\n    {\"name\": \"%s\", \"seconds\": %s, "
                "\"calls\": %llu}",
                s == 0 ? "" : ",",
                HostProfiler::slotName(
                    static_cast<HostProfiler::Slot>(s)),
                formatDouble(seconds).c_str(),
                (unsigned long long)calls);
        }
        double loop_seconds = 0;
        std::uint64_t loop_calls = 0;
        for (const SweepOutcome &o : outcomes) {
            if (!o.profileSeconds.empty()) {
                loop_seconds += o.profileSeconds[0];
                loop_calls += o.profileCalls[0];
            }
        }
        std::fprintf(
            f, "\n  ], \"eventsPerSec\": %s},\n",
            formatDouble(loop_seconds > 0
                             ? static_cast<double>(loop_calls) /
                                   loop_seconds
                             : 0.0)
                .c_str());
    }

    std::fprintf(
        f,
        "  \"parallel\": {\"hostSeconds\": %s, \"hostEvents\": %llu, "
        "\"hostEventsPerSec\": %s}",
        formatDouble(par.hostSeconds).c_str(),
        (unsigned long long)par.hostEvents,
        formatDouble(par.hostSeconds > 0
                         ? static_cast<double>(par.hostEvents) /
                               par.hostSeconds
                         : 0.0)
            .c_str());
    if (compare_serial) {
        std::fprintf(f,
                     ",\n  \"serial\": {\"hostSeconds\": %s},\n"
                     "  \"speedup\": %s",
                     formatDouble(serial_seconds).c_str(),
                     formatDouble(speedup).c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);

    std::fprintf(stderr, "wrote %s\n", out_path.c_str());

    // Merged Chrome-trace document: one process (pid = run index + 1)
    // per run, ready for ui.perfetto.dev / chrome://tracing.
    if (base.traceMask != 0) {
        std::FILE *tf = std::fopen(trace_out.c_str(), "w");
        if (tf == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
            return 1;
        }
        std::fprintf(tf, "{\"traceEvents\":[");
        bool first = true;
        for (const SweepOutcome &o : outcomes) {
            if (o.traceJson.empty())
                continue;
            std::fprintf(tf, "%s%s", first ? "" : ",",
                         o.traceJson.c_str());
            first = false;
        }
        std::fprintf(tf, "]}\n");
        std::fclose(tf);
        std::fprintf(stderr, "wrote %s\n", trace_out.c_str());
    }

    if (!stats_json_path.empty()) {
        std::FILE *sf = std::fopen(stats_json_path.c_str(), "w");
        if (sf == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_json_path.c_str());
            return 1;
        }
        std::fprintf(sf, "{\n  \"schema\": \"bctrl-stats-v1\",\n"
                         "  \"runs\": [\n");
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const SweepOutcome &o = outcomes[i];
            std::fprintf(
                sf,
                "    {\"workload\": \"%s\", \"safety\": \"%s\", "
                "\"profile\": \"%s\", \"stats\": %s}%s\n",
                o.workload.c_str(), safetyToken(o.result.safety),
                profileToken(o.result.profile),
                o.statsJson.empty() ? "{}" : o.statsJson.c_str(),
                i + 1 < outcomes.size() ? "," : "");
        }
        std::fprintf(sf, "  ]\n}\n");
        std::fclose(sf);
        std::fprintf(stderr, "wrote %s\n", stats_json_path.c_str());
    }
    return 0;
}
