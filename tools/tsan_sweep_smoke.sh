#!/usr/bin/env bash
# ThreadSanitizer smoke run for the parallel sweep engine, registered
# as the `tsan_sweep_smoke` ctest (label `sanitize-thread`): configures
# a separate TSan build of this source tree — with invariant contracts
# forced on — builds the sweep driver, then runs a micro-workload sweep
# across 4 worker threads under TSan. Any data race between concurrent
# Systems (shared mutable globals, cross-run aliasing) fails the run.
#
# usage: tsan_sweep_smoke.sh <source-dir> <build-dir>
set -euo pipefail

src="${1:?usage: tsan_sweep_smoke.sh <source-dir> <build-dir>}"
build="${2:?usage: tsan_sweep_smoke.sh <source-dir> <build-dir>}"

jobs="$(nproc 2>/dev/null || echo 4)"

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

echo "== configure (thread; contracts on; -Werror) =="
cmake -S "$src" -B "$build" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBCTRL_SANITIZE=thread \
      -DBCTRL_CONTRACTS=ON \
      -DBCTRL_WERROR=ON

echo "== build =="
cmake --build "$build" --target bctrl_sweep mailbox_stress -j "$jobs"

echo "== SPSC mailbox stress under TSan (producer + consumer) =="
"$build/tools/mailbox_stress"

echo "== parallel micro sweep under TSan (4 workers) =="
"$build/tools/bctrl_sweep" --micro --jobs 4 --quiet \
    --out "$build/BENCH_sweep_tsan.json"

echo "== domain-sharded event loop under TSan (3 shard threads) =="
# Exercises the parallel-loop grant protocol (coordinator handoff,
# SPSC mailboxes, shard worker threads) rather than the run-level
# sweep parallelism above; --compare-serial re-runs serially and
# fails on any divergence, so order bugs surface here too.
"$build/tools/bctrl_sweep" --micro --workloads uniform \
    --safety bc-bcc --parallel-loop --compare-serial \
    --quiet --out "$build/BENCH_sweep_tsan_sharded.json"

echo "tsan sweep smoke: clean"
