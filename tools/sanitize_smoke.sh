#!/usr/bin/env bash
# Sanitizer smoke run, registered as the `sanitize_smoke` ctest (label
# `sanitize`): configures a separate ASan+UBSan build of this source
# tree — with invariant contracts and -Werror forced on — builds the
# unit tests and the simulator driver, then runs the full unit suite
# and one micro workload under the sanitizers. Any ASan/UBSan report or
# contract violation fails the run.
#
# usage: sanitize_smoke.sh <source-dir> <build-dir>
set -euo pipefail

src="${1:?usage: sanitize_smoke.sh <source-dir> <build-dir>}"
build="${2:?usage: sanitize_smoke.sh <source-dir> <build-dir>}"

jobs="$(nproc 2>/dev/null || echo 4)"

# abort_on_error gives death-test-friendly aborts; leak detection stays
# at its default (enabled) so dropped Events/Packets are reported.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

echo "== configure (address,undefined; contracts on; -Werror) =="
cmake -S "$src" -B "$build" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBCTRL_SANITIZE=address,undefined \
      -DBCTRL_CONTRACTS=ON \
      -DBCTRL_WERROR=ON

echo "== build =="
cmake --build "$build" --target bctrl_tests bctrl-sim bctrl_chaos -j "$jobs"

echo "== unit tests under ASan+UBSan =="
"$build/tests/bctrl_tests" --gtest_brief=1

echo "== micro workload under ASan+UBSan =="
"$build/tools/bctrl-sim" --workload uniform --safety bc-bcc --scale 1

echo "== chaos campaign under ASan+UBSan =="
"$build/tools/bctrl_chaos" --seeds 2 --safety bc-bcc,ats-only --quiet \
    --out "$build/BENCH_chaos_asan.json"

echo "sanitize smoke: clean"
