/**
 * @file
 * bctrl_chaos: deterministic chaos campaign for the Border Control
 * simulator.
 *
 * Sweeps (fault plan × seed × safety model) over one workload, with a
 * FaultPlan arming the simulator's injection points (sim/fault.hh) and
 * mid-run attacks fired through the AttackInjector. Each run asserts
 * the safety invariants the paper promises:
 *
 *   - no unsafe access completes under a safe configuration: zero
 *     unblocked attacks and zero poisoned-frame writes reaching DRAM
 *     under full-IOMMU, CAPI-like, and both Border Control configs;
 *   - no hang escapes the watchdog: a run either completes or is
 *     declared hung by the watchdog (only the hang plan may hang, and
 *     a hang implies injected faults);
 *   - the machine drains: the packet pool returns to zero in flight
 *     after every run, chaos or not.
 *
 * Plans:
 *   latency  delays and duplicates everywhere; must complete clean
 *   lossy    dropped ATS responses and shootdown acks; retries recover
 *   corrupt  corrupt-permission / stuck-at translation payloads;
 *            quarantine-on-violation exercises OS recovery
 *   hang     low-rate request/response drops; the watchdog must catch
 *
 * Examples:
 *   bctrl_chaos                          # 16 seeds x 4 plans x 5 configs
 *   bctrl_chaos --seeds 4 --plans lossy,hang --safety bc-bcc,ats-only
 *   bctrl_chaos --workload hotspot --stats-json chaos_stats.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bc/attack.hh"
#include "sim/logging.hh"

using namespace bctrl;

namespace {

struct NamedSafety {
    const char *token;
    SafetyModel model;
};

constexpr NamedSafety kSafeties[] = {
    {"ats-only", SafetyModel::atsOnlyIommu},
    {"full-iommu", SafetyModel::fullIommu},
    {"capi", SafetyModel::capiLike},
    {"bc-nobcc", SafetyModel::borderControlNoBcc},
    {"bc-bcc", SafetyModel::borderControlBcc},
};

const char *
safetyToken(SafetyModel m)
{
    for (const NamedSafety &s : kSafeties)
        if (s.model == m)
            return s.token;
    return "?";
}

/** One chaos plan: how to arm the config for a run. */
struct PlanSpec {
    const char *name;
    bool mayHang; ///< only this plan is allowed to trip the watchdog
    void (*apply)(SystemConfig &cfg);
};

constexpr Tick kWatchdogInterval = 50'000'000; // 50 us simulated

void
applyLatency(SystemConfig &cfg)
{
    using namespace fault;
    cfg.faultPlan.rules = {
        Rule{Point::atsResponse, Kind::delay, 0.05, 50'000},
        Rule{Point::dramResponse, Kind::delay, 0.02, 30'000},
        Rule{Point::gpuRequest, Kind::duplicate, 0.01},
        Rule{Point::coherenceMsg, Kind::duplicate, 0.01},
        Rule{Point::dramResponse, Kind::duplicate, 0.01},
    };
    cfg.faultPlan.watchdogInterval = kWatchdogInterval;
}

void
applyLossy(SystemConfig &cfg)
{
    using namespace fault;
    cfg.faultPlan.rules = {
        Rule{Point::atsResponse, Kind::drop, 0.02},
        Rule{Point::shootdownAck, Kind::drop, 0.25},
    };
    cfg.faultPlan.watchdogInterval = kWatchdogInterval;
    // Keep the shootdown protocol hot so dropped acks actually occur.
    cfg.downgradesPerSecond = 500'000.0;
}

void
applyCorrupt(SystemConfig &cfg)
{
    using namespace fault;
    Rule stuck{Point::atsResponse, Kind::stuckAt, 0.02};
    stuck.maxFires = 20;
    cfg.faultPlan.rules = {
        Rule{Point::atsResponse, Kind::corruptPerms, 0.1},
        stuck,
    };
    cfg.faultPlan.watchdogInterval = kWatchdogInterval;
    // Violations from stale/corrupt translations drive the OS-level
    // quarantine & recovery path.
    cfg.quarantineOnViolation = true;
}

void
applyHang(SystemConfig &cfg)
{
    using namespace fault;
    Rule dram{Point::dramResponse, Kind::drop, 0.001};
    dram.maxFires = 4;
    Rule gpu{Point::gpuRequest, Kind::drop, 0.002};
    gpu.maxFires = 4;
    cfg.faultPlan.rules = {dram, gpu};
    cfg.faultPlan.watchdogInterval = 20'000'000;
}

constexpr PlanSpec kPlans[] = {
    {"latency", false, applyLatency},
    {"lossy", false, applyLossy},
    {"corrupt", false, applyCorrupt},
    {"hang", true, applyHang},
};

const PlanSpec *
findPlan(const std::string &name)
{
    for (const PlanSpec &p : kPlans)
        if (name == p.name)
            return &p;
    return nullptr;
}

bool
isSafeConfig(SafetyModel m)
{
    return m != SafetyModel::atsOnlyIommu;
}

/** Accelerator-side TLBs exist, so corrupt translations can land. */
bool
hasAccelTlb(SafetyModel m)
{
    return m == SafetyModel::atsOnlyIommu ||
           m == SafetyModel::borderControlNoBcc ||
           m == SafetyModel::borderControlBcc;
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

struct RunRecord {
    std::string plan;
    unsigned seedIndex = 0;
    SafetyModel safety{};
    RunResult result;
    std::uint64_t attacksInjected = 0;
    std::uint64_t attacksBlocked = 0;
    std::uint64_t attacksUnblocked = 0;
    std::vector<std::string> violations; ///< invariant failures
    std::string statsJson;
};

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --plans LIST       comma-separated of latency, lossy, "
        "corrupt,\n"
        "                     hang (default: all four)\n"
        "  --seeds N          fault seeds per (plan, safety) cell "
        "(default: 16)\n"
        "  --safety LIST      comma-separated of ats-only, full-iommu,\n"
        "                     capi, bc-nobcc, bc-bcc (default: all "
        "five)\n"
        "  --workload NAME    workload to run (default: bfs; pick one\n"
        "                     with read-only pages so corrupt-perms "
        "bites)\n"
        "  --scale N          workload scale factor (default: 1)\n"
        "  --profile P        highly | moderate (default: moderate)\n"
        "  --out FILE         JSON report (default: BENCH_chaos.json)\n"
        "  --stats-json FILE  full per-run stats dump\n"
        "  --quiet            suppress the per-run table\n"
        "  --help             this text\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogVerbose(false);

    std::vector<const PlanSpec *> plans;
    for (const PlanSpec &p : kPlans)
        plans.push_back(&p);
    std::vector<SafetyModel> safeties;
    for (const NamedSafety &s : kSafeties)
        safeties.push_back(s.model);
    unsigned seeds = 16;
    std::string workload = "bfs";
    std::uint64_t scale = 1;
    GpuProfile profile = GpuProfile::moderatelyThreaded;
    std::string out_path = "BENCH_chaos.json";
    std::string stats_json_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline_value = false;
        if (const std::size_t eq = arg.find('=');
            eq != std::string::npos && arg.rfind("--", 0) == 0) {
            inline_value = arg.substr(eq + 1);
            has_inline_value = true;
            arg = arg.substr(0, eq);
        }
        auto next = [&]() -> std::string {
            if (has_inline_value)
                return inline_value;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--plans") {
            plans.clear();
            for (const std::string &tok : splitList(next())) {
                const PlanSpec *p = findPlan(tok);
                if (p == nullptr) {
                    std::fprintf(stderr, "unknown plan '%s'\n",
                                 tok.c_str());
                    return 2;
                }
                plans.push_back(p);
            }
        } else if (arg == "--seeds") {
            seeds = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 0));
        } else if (arg == "--safety") {
            safeties.clear();
            for (const std::string &tok : splitList(next())) {
                bool found = false;
                for (const NamedSafety &s : kSafeties) {
                    if (tok == s.token) {
                        safeties.push_back(s.model);
                        found = true;
                    }
                }
                if (!found) {
                    std::fprintf(stderr, "unknown safety model '%s'\n",
                                 tok.c_str());
                    return 2;
                }
            }
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--scale") {
            scale = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--profile") {
            const std::string tok = next();
            if (tok == "highly") {
                profile = GpuProfile::highlyThreaded;
            } else if (tok == "moderate") {
                profile = GpuProfile::moderatelyThreaded;
            } else {
                std::fprintf(stderr, "unknown profile '%s'\n",
                             tok.c_str());
                return 2;
            }
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (plans.empty() || safeties.empty() || seeds == 0) {
        std::fprintf(stderr, "empty campaign: need at least one plan, "
                             "safety model, and seed\n");
        return 2;
    }

    std::vector<RunRecord> records;
    records.reserve(plans.size() * safeties.size() * seeds);
    std::uint64_t invariant_violations = 0;
    std::uint64_t hangs_caught = 0;
    std::uint64_t total_injected = 0;

    std::fprintf(stderr, "chaos: %zu plan(s) x %zu config(s) x %u "
                         "seed(s) on '%s'\n",
                 plans.size(), safeties.size(), seeds, workload.c_str());

    for (const PlanSpec *plan : plans) {
        for (SafetyModel safety : safeties) {
            for (unsigned s = 0; s < seeds; ++s) {
                SystemConfig cfg;
                cfg.safety = safety;
                cfg.profile = profile;
                cfg.workloadScale = scale;
                plan->apply(cfg);
                // Corrupt payloads model the untrusted accelerator-TLB
                // link; the ATS-to-frontend path is trusted-to-trusted
                // on full-IOMMU/CAPI, so only the watchdog stays armed
                // there.
                if (std::strcmp(plan->name, "corrupt") == 0 &&
                    !hasAccelTlb(safety)) {
                    cfg.faultPlan.rules.clear();
                }
                cfg.faultPlan.seed =
                    0x5eedfa0175bcULL ^
                    (static_cast<std::uint64_t>(s + 1) *
                     0x9e3779b97f4a7c15ULL);

                RunRecord rec;
                rec.plan = plan->name;
                rec.seedIndex = s;
                rec.safety = safety;
                {
                    System system(cfg);
                    AttackInjector injector(system);
                    system.addStatGroup(&injector.statGroup());

                    // Mid-run attacks. Translate-at-border front ends
                    // (full-IOMMU, CAPI) only accept virtual requests,
                    // so wild physical packets are impossible by
                    // construction there; forge an unbound ASID
                    // instead. Everywhere else, raw physical accesses
                    // against a frame the OS never granted: the top
                    // page of physical memory.
                    if (hasAccelTlb(safety)) {
                        const Addr target = cfg.physMemBytes - pageSize;
                        injector.scheduleAttackAt(2'000'000,
                                                  AttackKind::wildWrite,
                                                  target);
                        injector.scheduleAttackAt(3'000'000,
                                                  AttackKind::wildRead,
                                                  target);
                    } else {
                        injector.scheduleAttackAt(
                            2'000'000, AttackKind::forgedAsidRead,
                            0x10000000, 77);
                        injector.scheduleAttackAt(
                            3'000'000, AttackKind::forgedAsidRead,
                            0x20000000, 78);
                    }

                    rec.result = system.run(workload);
                    rec.attacksInjected = injector.injected();
                    rec.attacksBlocked = injector.blocked();
                    rec.attacksUnblocked = injector.unblocked();

                    // Invariant: the machine drains after every run.
                    if (system.packetPool().inFlight() != 0) {
                        rec.violations.push_back(
                            "packet pool did not drain");
                    }
                    if (!stats_json_path.empty()) {
                        std::ostringstream ss;
                        system.dumpStatsJson(ss);
                        rec.statsJson = ss.str();
                    }
                }

                // Invariant: no unsafe access completes under a safe
                // configuration.
                if (isSafeConfig(safety)) {
                    if (rec.result.unsafeWrites != 0) {
                        rec.violations.push_back(
                            "poisoned-frame write reached DRAM");
                    }
                    if (rec.attacksUnblocked != 0) {
                        rec.violations.push_back(
                            "attack completed unchecked");
                    }
                }
                // Invariant: only the hang plan may hang, and a hang
                // implies injected faults (the watchdog never fires on
                // a healthy run).
                if (rec.result.hung) {
                    ++hangs_caught;
                    if (!plan->mayHang) {
                        rec.violations.push_back(
                            "watchdog fired on a non-hang plan");
                    }
                    if (rec.result.faultsInjected == 0) {
                        rec.violations.push_back(
                            "hang declared without any injected fault");
                    }
                }

                invariant_violations += rec.violations.size();
                total_injected += rec.result.faultsInjected;

                if (!quiet) {
                    std::printf(
                        "%-8s %-10s seed %2u  %-9s inj %5llu rel %4llu "
                        "retry %4llu/%3llu quar %3llu unsafe %llu "
                        "att %llu/%llu%s\n",
                        rec.plan.c_str(), safetyToken(safety), s,
                        rec.result.hung ? "HUNG" : "completed",
                        (unsigned long long)rec.result.faultsInjected,
                        (unsigned long long)rec.result.dropsReleased,
                        (unsigned long long)rec.result.atsRetries,
                        (unsigned long long)rec.result.shootdownRetries,
                        (unsigned long long)rec.result.quarantines,
                        (unsigned long long)rec.result.unsafeWrites,
                        (unsigned long long)rec.attacksBlocked,
                        (unsigned long long)rec.attacksInjected,
                        rec.violations.empty() ? ""
                                               : "  ** INVARIANT **");
                    for (const std::string &v : rec.violations)
                        std::printf("    invariant violated: %s\n",
                                    v.c_str());
                }
                records.push_back(std::move(rec));
            }
        }
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"bctrl-chaos-v1\",\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", workload.c_str());
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < records.size(); ++i) {
        const RunRecord &r = records[i];
        std::fprintf(
            f,
            "    {\"plan\": \"%s\", \"seed\": %u, \"safety\": \"%s\", "
            "\"hung\": %s, \"runtimeTicks\": %llu, "
            "\"faultsInjected\": %llu, \"dropsReleased\": %llu, "
            "\"atsRetries\": %llu, \"shootdownRetries\": %llu, "
            "\"quarantines\": %llu, \"kills\": %llu, "
            "\"unsafeWrites\": %llu, \"violationsBlocked\": %llu, "
            "\"attacksInjected\": %llu, \"attacksBlocked\": %llu, "
            "\"attacksUnblocked\": %llu, \"invariantViolations\": "
            "%zu}%s\n",
            r.plan.c_str(), r.seedIndex, safetyToken(r.safety),
            r.result.hung ? "true" : "false",
            (unsigned long long)r.result.runtimeTicks,
            (unsigned long long)r.result.faultsInjected,
            (unsigned long long)r.result.dropsReleased,
            (unsigned long long)r.result.atsRetries,
            (unsigned long long)r.result.shootdownRetries,
            (unsigned long long)r.result.quarantines,
            (unsigned long long)r.result.kills,
            (unsigned long long)r.result.unsafeWrites,
            (unsigned long long)r.result.violations,
            (unsigned long long)r.attacksInjected,
            (unsigned long long)r.attacksBlocked,
            (unsigned long long)r.attacksUnblocked,
            r.violations.size(), i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"summary\": {\"runs\": %zu, \"faultsInjected\": "
                 "%llu, \"hangsCaught\": %llu, "
                 "\"invariantViolations\": %llu}\n}\n",
                 records.size(), (unsigned long long)total_injected,
                 (unsigned long long)hangs_caught,
                 (unsigned long long)invariant_violations);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());

    if (!stats_json_path.empty()) {
        std::FILE *sf = std::fopen(stats_json_path.c_str(), "w");
        if (sf == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_json_path.c_str());
            return 1;
        }
        std::fprintf(sf, "{\n  \"schema\": \"bctrl-chaos-stats-v1\",\n"
                         "  \"runs\": [\n");
        for (std::size_t i = 0; i < records.size(); ++i) {
            const RunRecord &r = records[i];
            std::fprintf(
                sf,
                "    {\"plan\": \"%s\", \"seed\": %u, \"safety\": "
                "\"%s\", \"stats\": %s}%s\n",
                r.plan.c_str(), r.seedIndex, safetyToken(r.safety),
                r.statsJson.empty() ? "{}" : r.statsJson.c_str(),
                i + 1 < records.size() ? "," : "");
        }
        std::fprintf(sf, "  ]\n}\n");
        std::fclose(sf);
        std::fprintf(stderr, "wrote %s\n", stats_json_path.c_str());
    }

    if (invariant_violations != 0) {
        std::fprintf(stderr,
                     "chaos: %llu invariant violation(s) across %zu "
                     "run(s)\n",
                     (unsigned long long)invariant_violations,
                     records.size());
        return 1;
    }
    std::fprintf(stderr,
                 "chaos: %zu run(s) clean (%llu fault(s) injected, "
                 "%llu hang(s) caught)\n",
                 records.size(), (unsigned long long)total_injected,
                 (unsigned long long)hangs_caught);
    return 0;
}
